//! The multi-level memory hierarchy: private split L1s over an inclusive
//! shared LLC with an MSI-style directory, with TimeCache engaged at every
//! level when configured.
//!
//! # Access semantics (Section V-A of the paper)
//!
//! On a tag hit, the requesting hardware context's s-bit is checked in
//! parallel with the tag. If set, the access is an ordinary hit. If clear,
//! the access is a **first access**: the request is sent down the hierarchy
//! and serviced with the latency of the first lower level where the
//! context's s-bit *is* set (or DRAM), the returned data is discarded, and
//! the s-bit is set so later accesses hit normally. The cache is **not**
//! refilled — it already holds the newest copy.
//!
//! On a true miss the conventional path runs: fetch from below, fill every
//! level on the way back (inclusive LLC), evicting victims as needed.
//!
//! # Coherence
//!
//! L1s are write-back/write-allocate. The LLC keeps a directory entry per
//! line: a sharer bitmask over cores and an optional dirty owner. Stores
//! invalidate remote copies; loads of a remotely-dirty line are serviced at
//! `remote_l1` latency after a write-back — the timing contrast exploited
//! by the invalidate+transfer attack (Section VII-B), which the
//! `dram_wait_on_remote_hit` mitigation removes.

use crate::addr::{Addr, LineAddr};
use crate::cache::Cache;
use crate::config::{ConfigError, HierarchyConfig, SecurityMode};
use crate::stats::HierarchyStats;
use timecache_core::{
    FaultInjector, FaultKind, Snapshot, TimeCacheConfig, TriggerPoint, Visibility,
};
use timecache_telemetry::{AccessOp, Counter, Histogram, ServedBy, Telemetry, TraceEvent};

/// The kind of memory access a core performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (routed to the L1I).
    IFetch,
    /// Data load (routed to the L1D).
    Load,
    /// Data store (routed to the L1D; write-back, write-allocate).
    Store,
}

impl AccessKind {
    /// Whether this access modifies the line.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

/// Which component ultimately provided (or, for first accesses, bounded the
/// latency of) the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// The core's private L1.
    L1,
    /// The shared last-level cache.
    LLC,
    /// A remote core's private cache (dirty-line forwarding).
    RemoteL1,
    /// Main memory.
    Memory,
}

/// The outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total access latency in cycles, as the core observes it.
    pub latency: u64,
    /// The component that determined the latency.
    pub served_by: Level,
    /// Whether the L1 had a tag hit.
    pub l1_tag_hit: bool,
    /// First-access miss taken at the L1 (tag hit, s-bit clear).
    pub first_access_l1: bool,
    /// First-access miss taken at the LLC.
    pub first_access_llc: bool,
}

impl AccessOutcome {
    /// Whether a first-access delay was charged anywhere on the path.
    pub fn is_first_access(&self) -> bool {
        self.first_access_l1 || self.first_access_llc
    }
}

/// How [`Hierarchy::access_batch`] advances the cycle clock between
/// consecutive accesses of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClock {
    /// Fixed stride: issue cycles are `start, start + s, start + 2s, ...`
    /// regardless of observed latencies (back-to-back pipelined replay).
    Stride(u64),
    /// Serialized replay: each access issues `latency + k` cycles after the
    /// previous one — the dependent-chain model the oracle driver and trace
    /// replay use.
    LatencyPlus(u64),
}

/// Cost of restoring a process's caching context at a context switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchCost {
    /// Comparator cycles: the per-cache sweeps run in parallel, so this is
    /// the maximum across levels.
    pub comparator_cycles: u64,
    /// Total 64-byte transfers to restore s-bit snapshots (summed across
    /// levels; these are DMA'd from kernel memory, Section VI-D).
    pub transfer_lines: u64,
    /// Whether any level detected timestamp rollover.
    pub rollover: bool,
    /// s-bits reset across all levels (stale entries dropped).
    pub sbits_reset: u64,
}

/// A process's saved caching context across the whole hierarchy: one
/// snapshot per cache this process's hardware context touches (L1I, L1D,
/// LLC). Entries are `None` until first saved and in baseline mode.
#[derive(Debug, Clone, Default)]
pub struct ContextSnapshot {
    l1i: Option<Snapshot>,
    l1d: Option<Snapshot>,
    llc: Option<Snapshot>,
}

impl ContextSnapshot {
    /// An empty context (newly created process: all s-bits will be reset).
    pub fn new() -> Self {
        ContextSnapshot::default()
    }

    /// Total bytes of kernel memory the snapshots occupy.
    pub fn storage_bytes(&self) -> usize {
        [&self.l1i, &self.l1d, &self.llc]
            .into_iter()
            .flatten()
            .map(Snapshot::storage_bytes)
            .sum()
    }
}

/// Per-LLC-line directory entry.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Bitmask of cores holding the line in a private L1 (I or D).
    sharers: u64,
    /// Core whose L1D holds a modified copy, if any.
    dirty_owner: Option<usize>,
}

/// A cache level as telemetry identifies it (label values and event names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKind {
    L1I,
    L1D,
    Llc,
}

impl CacheKind {
    fn of(kind: AccessKind) -> CacheKind {
        match kind {
            AccessKind::IFetch => CacheKind::L1I,
            AccessKind::Load | AccessKind::Store => CacheKind::L1D,
        }
    }

    fn index(self) -> usize {
        match self {
            CacheKind::L1I => 0,
            CacheKind::L1D => 1,
            CacheKind::Llc => 2,
        }
    }

    /// Event-facing cache name, matching [`Cache::name`].
    fn event_name(self) -> &'static str {
        match self {
            CacheKind::L1I => "L1I",
            CacheKind::L1D => "L1D",
            CacheKind::Llc => "LLC",
        }
    }
}

/// Pre-created telemetry handles for the hierarchy's hot path. Every
/// counter/histogram is resolved once at attach time, so instrumentation
/// during simulation is plain unsynchronized adds into the shared cells and
/// ring — no lookups, no heap allocation.
#[derive(Debug, Clone)]
struct SimSensors {
    tel: Telemetry,
    /// `outcome[cache][o]` with `o` ∈ {hit, first_access, miss}; cache
    /// order per [`CacheKind::index`].
    outcome: [[Counter; 3]; 3],
    /// Per-`served_by` access-latency histograms (l1, llc, remote_l1,
    /// memory).
    latency: [Histogram; 4],
    /// `events[cache][e]` with `e` ∈ {eviction, invalidation, writeback}.
    events: [[Counter; 3]; 3],
    restores: Counter,
    comparator_cycles: Counter,
    transfer_lines: Counter,
    sbits_reset: Counter,
    rollovers: Counter,
    clflushes: Counter,
}

impl SimSensors {
    /// Creates the sensor block, or `None` when telemetry is disabled.
    /// Takes the handle by value: the one clone lives here for the sensor
    /// block's lifetime; the access hot path never touches the `Rc` again.
    fn create(tel: Telemetry) -> Option<Box<SimSensors>> {
        let reg = tel.registry()?;
        const CACHES: [&str; 3] = ["l1i", "l1d", "llc"];
        const OUTCOMES: [&str; 3] = ["hit", "first_access", "miss"];
        const EVENTS: [&str; 3] = ["eviction", "invalidation", "writeback"];
        let outcome = CACHES.map(|c| {
            OUTCOMES.map(|o| {
                reg.counter(
                    "sim_cache_accesses_total",
                    "Cache accesses by level and outcome (hit / first_access / miss), \
                     summed over cores.",
                    &[("cache", c), ("outcome", o)],
                )
            })
        });
        let latency = [
            ServedBy::L1,
            ServedBy::Llc,
            ServedBy::RemoteL1,
            ServedBy::Memory,
        ]
        .map(|sb| {
            reg.histogram(
                "sim_access_latency_cycles",
                "Observed access latency in cycles by servicing component.",
                &[("served_by", sb.as_str())],
            )
        });
        let events = CACHES.map(|c| {
            EVENTS.map(|e| {
                reg.counter(
                    "sim_cache_line_events_total",
                    "Cache line lifecycle events (eviction / invalidation / writeback) \
                     by level, summed over cores.",
                    &[("cache", c), ("event", e)],
                )
            })
        });
        let restores = reg.counter(
            "sim_switch_restores_total",
            "Context restores performed by the hierarchy.",
            &[],
        );
        let comparator_cycles = reg.counter(
            "sim_switch_comparator_cycles_total",
            "Bit-serial comparator cycles accumulated across restores.",
            &[],
        );
        let transfer_lines = reg.counter(
            "sim_switch_transfer_lines_total",
            "64-byte s-bit snapshot transfers accumulated across restores.",
            &[],
        );
        let sbits_reset = reg.counter(
            "sim_switch_sbits_reset_total",
            "s-bits reset by comparator sweeps across restores.",
            &[],
        );
        let rollovers = reg.counter(
            "sim_switch_rollovers_total",
            "Restores that detected timestamp rollover.",
            &[],
        );
        let clflushes = reg.counter("sim_clflush_total", "clflush instructions executed.", &[]);
        Some(Box::new(SimSensors {
            tel,
            outcome,
            latency,
            events,
            restores,
            comparator_cycles,
            transfer_lines,
            sbits_reset,
            rollovers,
            clflushes,
        }))
    }
}

fn op_of(kind: AccessKind) -> AccessOp {
    match kind {
        AccessKind::IFetch => AccessOp::IFetch,
        AccessKind::Load => AccessOp::Load,
        AccessKind::Store => AccessOp::Store,
    }
}

fn served_of(level: Level) -> ServedBy {
    match level {
        Level::L1 => ServedBy::L1,
        Level::LLC => ServedBy::Llc,
        Level::RemoteL1 => ServedBy::RemoteL1,
        Level::Memory => ServedBy::Memory,
    }
}

/// The full memory hierarchy.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    llc: Cache,
    /// Directory, indexed by LLC flat line index.
    dir: Vec<DirEntry>,
    tc_cfg: Option<TimeCacheConfig>,
    /// `log2(line_size)`, resolved once so the per-access address-to-line
    /// conversion is a plain shift (no power-of-two assert or
    /// `trailing_zeros` on the hot path).
    line_shift: u32,
    /// Telemetry sensors; `None` (the default) keeps the hot path free of
    /// any instrumentation work beyond this one branch.
    sensors: Option<Box<SimSensors>>,
    /// Fault injector striking the save/restore paths; disabled (one cheap
    /// branch per probe site) unless [`Hierarchy::attach_faults`] is called.
    faults: FaultInjector,
}

impl Hierarchy {
    /// Builds a hierarchy from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if `cfg.validate()` fails.
    pub fn new(cfg: HierarchyConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        // FTM protects the LLC only, with one presence plane per *core*;
        // TimeCache protects every level, with one plane per hardware
        // context.
        let (l1_tc, llc_tc, llc_ctxs) = match cfg.security {
            SecurityMode::Baseline => (None, None, cfg.total_contexts()),
            SecurityMode::TimeCache(tc) => (Some(tc), Some(tc), cfg.total_contexts()),
            SecurityMode::Ftm => (None, Some(TimeCacheConfig::default()), cfg.cores),
        };
        let l1_ctxs = cfg.smt_per_core;
        let l1i = (0..cfg.cores)
            .map(|_| Cache::new("L1I", cfg.l1i, l1_ctxs, l1_tc))
            .collect();
        let l1d = (0..cfg.cores)
            .map(|_| Cache::new("L1D", cfg.l1d, l1_ctxs, l1_tc))
            .collect();
        let llc = Cache::new("LLC", cfg.llc, llc_ctxs, llc_tc);
        let dir = vec![DirEntry::default(); cfg.llc.geometry.num_lines()];
        let tc_cfg = match cfg.security {
            SecurityMode::TimeCache(tc) => Some(tc),
            _ => None,
        };
        let line_shift = cfg.llc.geometry.line_size().trailing_zeros();
        Ok(Hierarchy {
            cfg,
            l1i,
            l1d,
            llc,
            dir,
            tc_cfg,
            line_shift,
            sensors: None,
            faults: FaultInjector::disabled(),
        })
    }

    /// Attaches a [`Telemetry`] handle. When `tel` is enabled, the
    /// hierarchy reports per-level access-outcome counters, per-component
    /// latency histograms, line lifecycle events, and switch-cost totals
    /// through it. Attaching a disabled handle detaches instrumentation.
    ///
    /// All metric handles are resolved here, once — after this call the
    /// access hot path performs no allocation, registry lookups, or `Rc`
    /// reference-count traffic (the handle is cloned exactly once, into the
    /// sensor block).
    pub fn attach_telemetry(&mut self, tel: &Telemetry) {
        self.sensors = SimSensors::create(tel.clone());
    }

    /// Attaches a [`FaultInjector`] whose plan targets the context-switch
    /// save/restore choreography. The handle is shared (cloned), so the
    /// caller keeps access to the injection counters and records.
    pub fn attach_faults(&mut self, faults: &FaultInjector) {
        self.faults = faults.clone();
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Line size shared by all levels.
    pub fn line_size(&self) -> u64 {
        self.cfg.llc.geometry.line_size()
    }

    /// The LLC visibility-context index for `(core, thread)`: one per
    /// hardware context under TimeCache, one per core under FTM (presence
    /// bits are core-granular there).
    pub fn llc_ctx(&self, core: usize, thread: usize) -> usize {
        if self.cfg.security.is_ftm() {
            core
        } else {
            core * self.cfg.smt_per_core + thread
        }
    }

    fn check_context(&self, core: usize, thread: usize) {
        assert!(
            core < self.cfg.cores,
            "core {core} out of range ({} cores)",
            self.cfg.cores
        );
        assert!(
            thread < self.cfg.smt_per_core,
            "thread {thread} out of range ({} SMT contexts)",
            self.cfg.smt_per_core
        );
    }

    /// Performs one memory access by hardware context `(core, thread)` at
    /// cycle `now` and returns the observed latency and classification.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `thread` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        thread: usize,
        kind: AccessKind,
        addr: Addr,
        now: u64,
    ) -> AccessOutcome {
        self.check_context(core, thread);
        let line = LineAddr::from_raw(addr >> self.line_shift);
        if let Some(s) = &self.sensors {
            // Announce the clock so events emitted from clock-less inner
            // paths (evictions, write-backs) carry the access cycle.
            s.tel.set_now(now);
        }
        let out = self.access_inner(core, thread, kind, line, now);
        if self.sensors.is_some() {
            self.note_access(core, thread, kind, line, &out);
        }
        out
    }

    /// Performs a run of accesses by one hardware context, advancing the
    /// cycle clock per `clock` between them. Returns the outcomes in order
    /// and the clock value after the last access.
    ///
    /// Semantically identical to calling [`Hierarchy::access`] in a loop
    /// with the same clock arithmetic — statistics and telemetry counters
    /// stay exact — but the per-access overhead is hoisted: the context
    /// check runs once, and when [`Telemetry::trace_events`] is off the
    /// per-access `set_now` announcement (whose only consumer is event
    /// timestamps) is skipped along with event emission.
    ///
    /// # Panics
    ///
    /// Panics if `core` or `thread` is out of range.
    pub fn access_batch(
        &mut self,
        core: usize,
        thread: usize,
        accesses: &[(AccessKind, Addr)],
        start: u64,
        clock: BatchClock,
    ) -> (Vec<AccessOutcome>, u64) {
        self.check_context(core, thread);
        let (instrumented, events_on) = match &self.sensors {
            Some(s) => (true, s.tel.trace_events()),
            None => (false, false),
        };
        let mut outcomes = Vec::with_capacity(accesses.len());
        let mut now = start;
        for &(kind, addr) in accesses {
            let line = LineAddr::from_raw(addr >> self.line_shift);
            if events_on {
                if let Some(s) = &self.sensors {
                    s.tel.set_now(now);
                }
            }
            let out = self.access_inner(core, thread, kind, line, now);
            if instrumented {
                self.note_access(core, thread, kind, line, &out);
            }
            now += match clock {
                BatchClock::Stride(s) => s,
                BatchClock::LatencyPlus(k) => out.latency + k,
            };
            outcomes.push(out);
        }
        (outcomes, now)
    }

    /// The uninstrumented access path; every hit/miss/first-access
    /// classification a telemetry counter needs is reconstructible from the
    /// returned [`AccessOutcome`], which keeps counter derivation at a
    /// single choke point in [`Hierarchy::note_access`].
    fn access_inner(
        &mut self,
        core: usize,
        thread: usize,
        kind: AccessKind,
        line: LineAddr,
        now: u64,
    ) -> AccessOutcome {
        let lat = self.cfg.latencies;

        let l1 = self.l1_mut(core, kind);
        l1.stats_mut().accesses += 1;

        if let Some(hit) = l1.lookup(line) {
            let visible = l1.visibility(hit, thread) == Visibility::Visible;
            l1.touch(hit);
            if visible {
                l1.stats_mut().hits += 1;
                if kind.is_write() {
                    self.write_hit(core, kind, line);
                }
                return AccessOutcome {
                    latency: lat.l1_hit,
                    served_by: Level::L1,
                    l1_tag_hit: true,
                    first_access_l1: false,
                    first_access_llc: false,
                };
            }
            // First access at the L1: delay with the latency of the first
            // lower level that is visible to this context; data discarded.
            l1.stats_mut().first_access += 1;
            l1.record_first_access(hit, thread);
            let (latency, served_by, fa_llc) = self.probe_below(core, thread, line);
            if kind.is_write() {
                self.write_hit(core, kind, line);
            }
            return AccessOutcome {
                latency,
                served_by,
                l1_tag_hit: true,
                first_access_l1: true,
                first_access_llc: fa_llc,
            };
        }

        // L1 miss: consult the LLC.
        self.l1_mut(core, kind).stats_mut().misses += 1;
        self.llc.stats_mut().accesses += 1;
        let llc_ctx = self.llc_ctx(core, thread);

        // Every arm resolves the LLC slot the line occupies, so the L1 fill
        // below gets its directory index for free (no re-lookup).
        let (latency, served_by, fa_llc, llc_flat) = if let Some(hit) = self.llc.lookup(line) {
            let visible = self.llc.visibility(hit, llc_ctx) == Visibility::Visible;
            self.llc.touch(hit);
            if visible {
                self.llc.stats_mut().hits += 1;
                // Dirty in a remote L1? Forward at remote latency after a
                // write-back (invalidate+transfer timing).
                let remote_dirty = self.dir[hit.flat]
                    .dirty_owner
                    .filter(|&owner| owner != core);
                if let Some(owner) = remote_dirty {
                    self.writeback_owner_copy(owner, line);
                    (lat.remote_l1, Level::RemoteL1, false, hit.flat)
                } else {
                    (lat.llc_hit, Level::LLC, false, hit.flat)
                }
            } else {
                // First access at the LLC: the request continues to memory,
                // whose response is discarded (Section V-A). With the
                // Section VII-B mitigation this is also forced for remote
                // copies, which is already the behaviour here.
                self.llc.stats_mut().first_access += 1;
                self.llc.record_first_access(hit, llc_ctx);
                // A remotely-dirty copy must still be written back so the
                // LLC holds current data for the upcoming L1 fill.
                if let Some(owner) = self.dir[hit.flat]
                    .dirty_owner
                    .filter(|&owner| owner != core)
                {
                    self.writeback_owner_copy(owner, line);
                }
                (lat.dram, Level::Memory, true, hit.flat)
            }
        } else {
            // True LLC miss: fetch from memory and fill the LLC.
            self.llc.stats_mut().misses += 1;
            let flat = self.fill_llc(line, llc_ctx, now);
            (lat.dram, Level::Memory, false, flat)
        };

        // Fill the L1 from the (now current) LLC copy.
        self.fill_l1(core, thread, kind, line, now, llc_flat);
        if kind.is_write() {
            self.write_hit(core, kind, line);
        }

        AccessOutcome {
            latency,
            served_by,
            l1_tag_hit: false,
            first_access_l1: false,
            first_access_llc: fa_llc,
        }
    }

    /// `clflush`: invalidates the line everywhere, writing back dirty data.
    /// Returns the instruction's completion latency, which in the baseline
    /// depends on whether any copy existed — the flush+flush channel — and
    /// is constant under the Section VII-C mitigation.
    pub fn clflush(&mut self, addr: Addr) -> u64 {
        let line = LineAddr::from_raw(addr >> self.line_shift);
        if let Some(s) = &self.sensors {
            s.clflushes.inc();
        }
        let mut present = false;
        for core in 0..self.cfg.cores {
            if let Some(dirty) = self.l1i[core].invalidate(line) {
                present = true;
                self.note_invalidation(CacheKind::L1I, line, dirty);
            }
            if let Some(dirty) = self.l1d[core].invalidate(line) {
                present = true;
                self.note_invalidation(CacheKind::L1D, line, dirty);
                if dirty {
                    self.l1d[core].stats_mut().writebacks += 1;
                    self.note_writeback(CacheKind::L1D, line);
                }
            }
        }
        if let Some(hit) = self.llc.lookup(line) {
            present = true;
            self.dir[hit.flat] = DirEntry::default();
            let dirty = self.llc.invalidate(line) == Some(true);
            self.note_invalidation(CacheKind::Llc, line, dirty);
            if dirty {
                self.llc.stats_mut().writebacks += 1;
                self.note_writeback(CacheKind::Llc, line);
            }
        }
        let constant_time = self
            .tc_cfg
            .map(|tc| tc.constant_time_clflush())
            .unwrap_or(false);
        if present || constant_time {
            self.cfg.latencies.flush_present
        } else {
            self.cfg.latencies.flush_absent
        }
    }

    /// Saves the caching context of `(core, thread)` across all levels at
    /// cycle `now`. Returns an empty snapshot in baseline mode.
    pub fn save_context(&self, core: usize, thread: usize, now: u64) -> ContextSnapshot {
        self.check_context(core, thread);
        if self.cfg.security.is_ftm() {
            // FTM has no per-process state: presence bits stay with the
            // core across context switches (which is exactly its weakness).
            return ContextSnapshot::default();
        }
        if self
            .faults
            .fire(FaultKind::DropSnapshot, TriggerPoint::Save)
        {
            // DMA to kernel memory failed wholesale: nothing was saved. The
            // process will restore as fresh — conservative, never stale.
            return ContextSnapshot::default();
        }
        let mut snap = ContextSnapshot {
            l1i: self.l1i[core].save_context(thread, now),
            l1d: self.l1d[core].save_context(thread, now),
            llc: self.llc.save_context(self.llc_ctx(core, thread), now),
        };
        if self
            .faults
            .fire(FaultKind::CorruptSnapshot, TriggerPoint::Save)
        {
            // One strike corrupts every level's copy; each keeps the honest
            // checksum, so the restore-side integrity check catches it.
            snap.l1i = snap.l1i.as_ref().map(|s| self.faults.corrupt_snapshot(s));
            snap.l1d = snap.l1d.as_ref().map(|s| self.faults.corrupt_snapshot(s));
            snap.llc = snap.llc.as_ref().map(|s| self.faults.corrupt_snapshot(s));
        }
        snap
    }

    /// Restores a process's caching context onto `(core, thread)`;
    /// `snapshot = None` models a newly created process (all s-bits reset).
    /// No-op (zero cost) in baseline mode.
    pub fn restore_context(
        &mut self,
        core: usize,
        thread: usize,
        snapshot: Option<&ContextSnapshot>,
        now: u64,
    ) -> SwitchCost {
        self.check_context(core, thread);
        let mut cost = SwitchCost::default();
        if self.cfg.security.is_ftm() {
            return cost;
        }
        let llc_ctx = self.llc_ctx(core, thread);
        // Destructure so the caches and the injector are disjoint borrows —
        // no per-restore clone of the injector's shared plan.
        let Hierarchy {
            l1i,
            l1d,
            llc,
            faults,
            ..
        } = self;
        let parts: [(&mut Cache, usize, Option<&Snapshot>); 3] = [
            (
                &mut l1i[core],
                thread,
                snapshot.and_then(|s| s.l1i.as_ref()),
            ),
            (
                &mut l1d[core],
                thread,
                snapshot.and_then(|s| s.l1d.as_ref()),
            ),
            (llc, llc_ctx, snapshot.and_then(|s| s.llc.as_ref())),
        ];
        for (cache, ctx, snap) in parts {
            if let Some(out) = cache.restore_context_faulty(ctx, snap, now, faults) {
                cost.comparator_cycles = cost.comparator_cycles.max(out.comparator_cycles);
                cost.transfer_lines += out.transfer_lines as u64;
                cost.rollover |= out.rollover;
                cost.sbits_reset += out.sbits_reset as u64;
            }
        }
        if let Some(s) = &self.sensors {
            s.tel.set_now(now);
            s.restores.inc();
            s.comparator_cycles.add(cost.comparator_cycles);
            s.transfer_lines.add(cost.transfer_lines);
            s.sbits_reset.add(cost.sbits_reset);
            if cost.rollover {
                s.rollovers.inc();
            }
        }
        cost
    }

    /// Statistics snapshot across all caches.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.iter().map(|c| *c.stats()).collect(),
            l1d: self.l1d.iter().map(|c| *c.stats()).collect(),
            llc: *self.llc.stats(),
        }
    }

    /// Clears statistics on every cache (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        for c in self.l1i.iter_mut().chain(self.l1d.iter_mut()) {
            c.reset_stats();
        }
        self.llc.reset_stats();
    }

    /// Direct read-only access to a core's L1I (diagnostics/tests).
    pub fn l1i(&self, core: usize) -> &Cache {
        &self.l1i[core]
    }

    /// Direct read-only access to a core's L1D (diagnostics/tests).
    pub fn l1d(&self, core: usize) -> &Cache {
        &self.l1d[core]
    }

    /// Direct read-only access to the LLC (diagnostics/tests).
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The single choke point deriving telemetry counters from an access
    /// outcome. The mapping mirrors exactly how [`Hierarchy::access_inner`]
    /// attributes [`CacheStats`](crate::stats::CacheStats):
    ///
    /// * L1 (of the access kind): `first_access` iff `first_access_l1`,
    ///   `hit` iff tag hit without a first access, `miss` otherwise.
    /// * LLC: consulted unless the access was a pure L1 hit; then
    ///   `first_access` iff `first_access_llc`, `miss` iff the L1 also
    ///   missed and memory serviced it, `hit` otherwise (including
    ///   remote-L1 forwarding and the forced-DRAM mitigation path).
    fn note_access(
        &self,
        core: usize,
        thread: usize,
        kind: AccessKind,
        line: LineAddr,
        out: &AccessOutcome,
    ) {
        let s = self.sensors.as_ref().expect("checked by caller");
        let l1 = CacheKind::of(kind).index();
        let l1_outcome = if out.first_access_l1 {
            1
        } else if out.l1_tag_hit {
            0
        } else {
            2
        };
        s.outcome[l1][l1_outcome].inc();

        let pure_l1_hit = out.l1_tag_hit && !out.first_access_l1;
        if !pure_l1_hit {
            let llc_outcome = if out.first_access_llc {
                1
            } else if !out.l1_tag_hit && out.served_by == Level::Memory {
                2
            } else {
                0
            };
            s.outcome[CacheKind::Llc.index()][llc_outcome].inc();
        }

        let served = served_of(out.served_by);
        let served_idx = match served {
            ServedBy::L1 => 0,
            ServedBy::Llc => 1,
            ServedBy::RemoteL1 => 2,
            ServedBy::Memory => 3,
        };
        s.latency[served_idx].observe(out.latency);

        s.tel.emit(TraceEvent::Access {
            core: core as u32,
            thread: thread as u32,
            op: op_of(kind),
            served_by: served,
            latency: out.latency,
            l1_tag_hit: out.l1_tag_hit,
            first_access_l1: out.first_access_l1,
            first_access_llc: out.first_access_llc,
            line: line.raw(),
        });
    }

    /// Records a replacement eviction (event + counter). No-op when
    /// telemetry is detached.
    fn note_eviction(&self, cache: CacheKind, line: LineAddr, dirty: bool) {
        if let Some(s) = &self.sensors {
            s.events[cache.index()][0].inc();
            s.tel.emit(TraceEvent::Eviction {
                cache: cache.event_name(),
                line: line.raw(),
                dirty,
            });
        }
    }

    /// Records an invalidation (coherence / back-invalidation / clflush).
    fn note_invalidation(&self, cache: CacheKind, line: LineAddr, dirty: bool) {
        if let Some(s) = &self.sensors {
            s.events[cache.index()][1].inc();
            s.tel.emit(TraceEvent::Invalidation {
                cache: cache.event_name(),
                line: line.raw(),
                dirty,
            });
        }
    }

    /// Records a dirty-line write-back.
    fn note_writeback(&self, cache: CacheKind, line: LineAddr) {
        if let Some(s) = &self.sensors {
            s.events[cache.index()][2].inc();
            s.tel.emit(TraceEvent::Writeback {
                cache: cache.event_name(),
                line: line.raw(),
            });
        }
    }

    fn l1_mut(&mut self, core: usize, kind: AccessKind) -> &mut Cache {
        match kind {
            AccessKind::IFetch => &mut self.l1i[core],
            AccessKind::Load | AccessKind::Store => &mut self.l1d[core],
        }
    }

    /// Latency probe below an L1 first access: serviced at LLC latency if
    /// the LLC copy is visible to this context (unless the Section VII-B
    /// mitigation forces DRAM), else at DRAM latency with the LLC s-bit set
    /// along the way. Never fills anything.
    fn probe_below(&mut self, core: usize, thread: usize, line: LineAddr) -> (u64, Level, bool) {
        let lat = self.cfg.latencies;
        let llc_ctx = self.llc_ctx(core, thread);
        self.llc.stats_mut().accesses += 1;
        // Inclusivity: an L1-resident line must be LLC-resident.
        let hit = self
            .llc
            .lookup(line)
            .expect("inclusive LLC lost an L1-resident line");
        self.llc.touch(hit);
        if self.llc.visibility(hit, llc_ctx) == Visibility::Visible {
            self.llc.stats_mut().hits += 1;
            let force_dram = self
                .tc_cfg
                .map(|tc| tc.dram_wait_on_remote_hit())
                .unwrap_or(false);
            if force_dram {
                (lat.dram, Level::Memory, false)
            } else {
                (lat.llc_hit, Level::LLC, false)
            }
        } else {
            self.llc.stats_mut().first_access += 1;
            self.llc.record_first_access(hit, llc_ctx);
            (lat.dram, Level::Memory, true)
        }
    }

    /// Fills the LLC with `line`, handling inclusive back-invalidation of
    /// the victim and directory setup. Returns the flat slot index the line
    /// landed in (the caller's directory key).
    fn fill_llc(&mut self, line: LineAddr, llc_ctx: usize, now: u64) -> usize {
        let (slot, victim) = self.llc.fill(line, llc_ctx, now);
        if let Some(victim) = victim {
            self.note_eviction(CacheKind::Llc, victim.line, victim.dirty);
            // Inclusive LLC: evicting a line removes it from all L1s.
            // The victim occupied the same flat slot the new line now uses;
            // its directory entry is at that index.
            let victim_entry = std::mem::take(&mut self.dir[slot.flat]);
            for core in 0..self.cfg.cores {
                if victim_entry.sharers >> core & 1 == 1 {
                    if let Some(dirty) = self.l1i[core].invalidate(victim.line) {
                        self.note_invalidation(CacheKind::L1I, victim.line, dirty);
                    }
                    if let Some(dirty) = self.l1d[core].invalidate(victim.line) {
                        self.note_invalidation(CacheKind::L1D, victim.line, dirty);
                        if dirty {
                            // Dirty L1 copy of a dying LLC line: straight to
                            // memory.
                            self.l1d[core].stats_mut().writebacks += 1;
                            self.note_writeback(CacheKind::L1D, victim.line);
                        }
                    }
                }
            }
            if victim.dirty {
                self.llc.stats_mut().writebacks += 1;
                self.note_writeback(CacheKind::Llc, victim.line);
            }
        } else {
            // Even without a victim the slot's directory entry may be stale
            // (from an invalidated line): reset it.
            self.dir[slot.flat] = DirEntry::default();
        }
        slot.flat
    }

    /// Fills a private L1 with `line`, updating the directory and handling
    /// the victim write-back. `llc_flat` is the LLC slot `line` occupies
    /// (guaranteed by inclusivity; the caller just resolved it).
    fn fill_l1(
        &mut self,
        core: usize,
        thread: usize,
        kind: AccessKind,
        line: LineAddr,
        now: u64,
        llc_flat: usize,
    ) {
        debug_assert_eq!(
            self.llc.lookup(line).map(|h| h.flat),
            Some(llc_flat),
            "inclusive LLC lost an L1-resident line"
        );
        let (_, victim) = self.l1_mut(core, kind).fill(line, thread, now);
        if let Some(v) = victim {
            self.note_eviction(CacheKind::of(kind), v.line, v.dirty);
            if v.dirty {
                // Write back to the LLC (present by inclusivity).
                self.l1_mut(core, kind).stats_mut().writebacks += 1;
                self.note_writeback(CacheKind::of(kind), v.line);
                if let Some(hit) = self.llc.lookup(v.line) {
                    self.llc.set_dirty(hit, true);
                    if self.dir[hit.flat].dirty_owner == Some(core) {
                        self.dir[hit.flat].dirty_owner = None;
                    }
                }
            }
            self.dir_remove_sharer_if_gone(core, v.line);
        }
        self.dir[llc_flat].sharers |= 1 << core;
    }

    /// A store hit: mark the L1D copy dirty and invalidate remote copies.
    fn write_hit(&mut self, core: usize, kind: AccessKind, line: LineAddr) {
        debug_assert!(kind.is_write());
        if let Some(hit) = self.l1d[core].lookup(line) {
            self.l1d[core].set_dirty(hit, true);
        }
        if let Some(hit) = self.llc.lookup(line) {
            let entry = self.dir[hit.flat];
            for other in 0..self.cfg.cores {
                if other != core && entry.sharers >> other & 1 == 1 {
                    if let Some(dirty) = self.l1i[other].invalidate(line) {
                        self.note_invalidation(CacheKind::L1I, line, dirty);
                    }
                    if let Some(dirty) = self.l1d[other].invalidate(line) {
                        self.note_invalidation(CacheKind::L1D, line, dirty);
                        if dirty {
                            // Remote dirty copy written back before we
                            // overwrite.
                            self.l1d[other].stats_mut().writebacks += 1;
                            self.note_writeback(CacheKind::L1D, line);
                            self.llc.set_dirty(hit, true);
                        }
                    }
                }
            }
            self.dir[hit.flat].sharers = 1 << core;
            self.dir[hit.flat].dirty_owner = Some(core);
        }
    }

    /// Writes a remote core's dirty copy back to the LLC (clean forwarding
    /// state afterwards).
    fn writeback_owner_copy(&mut self, owner: usize, line: LineAddr) {
        if let Some(hit) = self.l1d[owner].lookup(line) {
            if self.l1d[owner].is_dirty(hit) {
                self.l1d[owner].set_dirty(hit, false);
                self.l1d[owner].stats_mut().writebacks += 1;
                self.note_writeback(CacheKind::L1D, line);
            }
        }
        if let Some(hit) = self.llc.lookup(line) {
            self.llc.set_dirty(hit, true);
            self.dir[hit.flat].dirty_owner = None;
        }
    }

    /// Drops `core` from a line's sharer mask if neither of its L1s still
    /// holds the line.
    fn dir_remove_sharer_if_gone(&mut self, core: usize, line: LineAddr) {
        let still_held =
            self.l1i[core].lookup(line).is_some() || self.l1d[core].lookup(line).is_some();
        if !still_held {
            if let Some(hit) = self.llc.lookup(line) {
                self.dir[hit.flat].sharers &= !(1 << core);
                if self.dir[hit.flat].dirty_owner == Some(core) {
                    self.dir[hit.flat].dirty_owner = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityMode;

    fn hier(security: SecurityMode, cores: usize) -> Hierarchy {
        let mut cfg = HierarchyConfig::with_cores(cores);
        cfg.security = security;
        Hierarchy::new(cfg).unwrap()
    }

    fn tc() -> SecurityMode {
        SecurityMode::TimeCache(TimeCacheConfig::default())
    }

    #[test]
    fn cold_miss_then_hit_baseline() {
        let mut h = hier(SecurityMode::Baseline, 1);
        let a = h.access(0, 0, AccessKind::Load, 0x1000, 0);
        assert_eq!(a.served_by, Level::Memory);
        assert!(!a.l1_tag_hit);
        let b = h.access(0, 0, AccessKind::Load, 0x1000, 1);
        assert_eq!(b.served_by, Level::L1);
        assert_eq!(b.latency, h.config().latencies.l1_hit);
        let s = h.stats();
        assert_eq!(s.l1d[0].hits, 1);
        assert_eq!(s.l1d[0].misses, 1);
        assert_eq!(s.llc.misses, 1);
    }

    #[test]
    fn ifetch_routes_to_l1i() {
        let mut h = hier(SecurityMode::Baseline, 1);
        h.access(0, 0, AccessKind::IFetch, 0x2000, 0);
        let s = h.stats();
        assert_eq!(s.l1i[0].accesses, 1);
        assert_eq!(s.l1d[0].accesses, 0);
    }

    #[test]
    fn smt_sibling_first_access_is_delayed() {
        let mut cfg = HierarchyConfig::with_cores(1);
        cfg.smt_per_core = 2;
        cfg.security = tc();
        let mut h = Hierarchy::new(cfg).unwrap();

        // Thread 0 (victim) loads a shared line.
        h.access(0, 0, AccessKind::Load, 0x3000, 0);
        // Thread 1 (spy) reloads: tag hit but first access -> memory latency.
        let spy = h.access(0, 1, AccessKind::Load, 0x3000, 10);
        assert!(spy.l1_tag_hit);
        assert!(spy.first_access_l1);
        assert!(spy.first_access_llc);
        assert_eq!(spy.served_by, Level::Memory);
        assert_eq!(spy.latency, h.config().latencies.dram);
        // Second access by the spy is now a normal hit.
        let again = h.access(0, 1, AccessKind::Load, 0x3000, 20);
        assert_eq!(again.served_by, Level::L1);
    }

    #[test]
    fn baseline_smt_sibling_gets_fast_reload() {
        let mut cfg = HierarchyConfig::with_cores(1);
        cfg.smt_per_core = 2;
        let mut h = Hierarchy::new(cfg).unwrap();
        h.access(0, 0, AccessKind::Load, 0x3000, 0);
        let spy = h.access(0, 1, AccessKind::Load, 0x3000, 10);
        assert_eq!(spy.served_by, Level::L1); // the leak TimeCache closes
    }

    #[test]
    fn cross_core_first_access_at_llc() {
        let mut h = hier(tc(), 2);
        // Core 0 loads; line now in core 0's L1 and the LLC.
        h.access(0, 0, AccessKind::Load, 0x4000, 0);
        // Core 1 misses its L1, tag-hits the LLC, but s-bit is clear.
        let spy = h.access(1, 0, AccessKind::Load, 0x4000, 10);
        assert!(!spy.l1_tag_hit);
        assert!(spy.first_access_llc);
        assert_eq!(spy.latency, h.config().latencies.dram);
        // Now visible: a reload on core 1 hits its own L1.
        let again = h.access(1, 0, AccessKind::Load, 0x4000, 20);
        assert_eq!(again.served_by, Level::L1);
    }

    #[test]
    fn cross_core_baseline_llc_hit() {
        let mut h = hier(SecurityMode::Baseline, 2);
        h.access(0, 0, AccessKind::Load, 0x4000, 0);
        let spy = h.access(1, 0, AccessKind::Load, 0x4000, 10);
        assert_eq!(spy.served_by, Level::LLC);
        assert_eq!(spy.latency, h.config().latencies.llc_hit);
    }

    #[test]
    fn clflush_removes_line_everywhere() {
        let mut h = hier(SecurityMode::Baseline, 2);
        h.access(0, 0, AccessKind::Load, 0x5000, 0);
        h.access(1, 0, AccessKind::Load, 0x5000, 1);
        let lat_present = h.clflush(0x5000);
        assert_eq!(lat_present, h.config().latencies.flush_present);
        assert!(h.llc().lookup(LineAddr::from_addr(0x5000, 64)).is_none());
        let miss = h.access(0, 0, AccessKind::Load, 0x5000, 2);
        assert_eq!(miss.served_by, Level::Memory);
    }

    #[test]
    fn clflush_timing_leaks_in_baseline_and_not_with_mitigation() {
        let mut h = hier(SecurityMode::Baseline, 1);
        h.access(0, 0, AccessKind::Load, 0x6000, 0);
        let first = h.clflush(0x6000);
        let second = h.clflush(0x6000); // line gone: aborts early
        assert!(
            second < first,
            "flush+flush channel should exist in baseline"
        );

        let mut cfg = HierarchyConfig::with_cores(1);
        cfg.security =
            SecurityMode::TimeCache(TimeCacheConfig::default().with_constant_time_clflush(true));
        let mut h = Hierarchy::new(cfg).unwrap();
        h.access(0, 0, AccessKind::Load, 0x6000, 0);
        assert_eq!(h.clflush(0x6000), h.clflush(0x6000));
    }

    #[test]
    fn store_gains_exclusivity() {
        let mut h = hier(SecurityMode::Baseline, 2);
        h.access(0, 0, AccessKind::Load, 0x7000, 0);
        h.access(1, 0, AccessKind::Load, 0x7000, 1);
        // Core 1 writes: core 0's copy must be invalidated.
        h.access(1, 0, AccessKind::Store, 0x7000, 2);
        let reload = h.access(0, 0, AccessKind::Load, 0x7000, 3);
        assert!(!reload.l1_tag_hit, "core 0 copy should be gone");
        assert_eq!(reload.served_by, Level::RemoteL1);
    }

    #[test]
    fn remote_dirty_line_served_at_remote_latency_then_clean() {
        let mut h = hier(SecurityMode::Baseline, 2);
        h.access(0, 0, AccessKind::Store, 0x8000, 0);
        let spy = h.access(1, 0, AccessKind::Load, 0x8000, 1);
        assert_eq!(spy.served_by, Level::RemoteL1);
        assert_eq!(spy.latency, h.config().latencies.remote_l1);
        // After forwarding, a third core-1 access is a local hit.
        let again = h.access(1, 0, AccessKind::Load, 0x8000, 2);
        assert_eq!(again.served_by, Level::L1);
    }

    #[test]
    fn dram_wait_mitigation_hides_remote_timing() {
        let mut cfg = HierarchyConfig::with_cores(2);
        cfg.security =
            SecurityMode::TimeCache(TimeCacheConfig::default().with_dram_wait_on_remote_hit(true));
        let mut h = Hierarchy::new(cfg).unwrap();
        h.access(0, 0, AccessKind::Store, 0x8000, 0);
        // Core 1's first access must observe DRAM latency even though a
        // remote dirty copy exists.
        let spy = h.access(1, 0, AccessKind::Load, 0x8000, 1);
        assert_eq!(spy.latency, h.config().latencies.dram);
    }

    #[test]
    fn context_switch_isolation_on_one_core() {
        let mut h = hier(tc(), 1);
        // Process A loads a shared line and is preempted.
        h.access(0, 0, AccessKind::Load, 0x9000, 100);
        let snap_a = h.save_context(0, 0, 200);
        h.restore_context(0, 0, None, 200); // B scheduled (fresh)

        // B reloads the same shared line: tag hit, but must be delayed.
        let spy = h.access(0, 0, AccessKind::Load, 0x9000, 300);
        assert!(spy.l1_tag_hit);
        assert!(spy.first_access_l1);

        // B preempted, A resumes: A's own line is still visible.
        let snap_b = h.save_context(0, 0, 400);
        h.restore_context(0, 0, Some(&snap_a), 400);
        let a2 = h.access(0, 0, AccessKind::Load, 0x9000, 500);
        assert_eq!(a2.served_by, Level::L1);

        // B resumes; its first access already paid, so it hits now.
        let _ = h.save_context(0, 0, 600);
        h.restore_context(0, 0, Some(&snap_b), 600);
        let b2 = h.access(0, 0, AccessKind::Load, 0x9000, 700);
        assert_eq!(b2.served_by, Level::L1);
    }

    #[test]
    fn restore_resets_lines_filled_while_preempted() {
        let mut h = hier(tc(), 1);
        h.access(0, 0, AccessKind::Load, 0xA000, 100); // A's line
        let snap_a = h.save_context(0, 0, 200);
        h.restore_context(0, 0, None, 200);

        // B evicts nothing but loads a new line X at cycle 300.
        h.access(0, 0, AccessKind::Load, 0xB000, 300);
        let _ = h.save_context(0, 0, 400);

        // A resumes; X was filled after A's Ts -> not visible to A.
        let cost = h.restore_context(0, 0, Some(&snap_a), 400);
        assert!(!cost.rollover);
        let x = h.access(0, 0, AccessKind::Load, 0xB000, 500);
        assert!(x.l1_tag_hit);
        assert!(x.first_access_l1, "B's line must not be visible to A");
        // A's own line is untouched.
        let own = h.access(0, 0, AccessKind::Load, 0xA000, 600);
        assert_eq!(own.served_by, Level::L1);
    }

    #[test]
    fn switch_cost_reports_transfers_and_cycles() {
        let mut h = hier(tc(), 1);
        h.access(0, 0, AccessKind::Load, 0xC000, 0);
        let snap = h.save_context(0, 0, 10);
        let cost = h.restore_context(0, 0, Some(&snap), 20);
        // L1: 512 lines -> 64B -> 1 transfer each; LLC: 32768 lines -> 4KB
        // -> 64 transfers.
        assert_eq!(cost.transfer_lines, 1 + 1 + 64);
        assert_eq!(cost.comparator_cycles, 33);
        let baseline_cost = hier(SecurityMode::Baseline, 1).restore_context(0, 0, None, 0);
        assert_eq!(baseline_cost, SwitchCost::default());
    }

    #[test]
    fn inclusive_llc_eviction_back_invalidates_l1() {
        // Tiny hierarchy: LLC with 1-way sets so evictions are easy to force.
        let cfg = HierarchyConfig {
            l1i: crate::config::CacheConfig::new(256, 1, 64),
            l1d: crate::config::CacheConfig::new(256, 1, 64),
            llc: crate::config::CacheConfig::new(1024, 1, 64),
            ..HierarchyConfig::default()
        };
        let mut h = Hierarchy::new(cfg).unwrap();

        // 0x0 and 0x400 collide in the 16-set... (1024/64 = 16 sets) —
        // stride 1024 collides.
        h.access(0, 0, AccessKind::Load, 0x0, 0);
        assert!(h.l1d(0).lookup(LineAddr::from_addr(0x0, 64)).is_some());
        h.access(0, 0, AccessKind::Load, 0x400, 1); // evicts LLC line 0x0
        assert!(
            h.l1d(0).lookup(LineAddr::from_addr(0x0, 64)).is_none(),
            "L1 copy must be back-invalidated with the LLC line"
        );
    }

    #[test]
    fn first_access_does_not_perturb_dirty_data() {
        let mut h = hier(tc(), 1);
        // A writes, B first-accesses (read), A resumes and reads: data path
        // statistics must show no spurious writeback of A's dirty line.
        h.access(0, 0, AccessKind::Store, 0xD000, 0);
        let snap_a = h.save_context(0, 0, 10);
        h.restore_context(0, 0, None, 10);
        h.access(0, 0, AccessKind::Load, 0xD000, 20); // B: first access
        let _ = h.save_context(0, 0, 30);
        h.restore_context(0, 0, Some(&snap_a), 30);
        let a = h.access(0, 0, AccessKind::Load, 0xD000, 40);
        assert_eq!(a.served_by, Level::L1);
        assert_eq!(h.stats().l1d[0].writebacks, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        hier(SecurityMode::Baseline, 1).save_context(1, 0, 0);
    }

    #[test]
    fn save_time_corruption_is_caught_at_restore() {
        use timecache_core::{FaultPlan, TriggerPoint};

        let mut h = hier(tc(), 1);
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::CorruptSnapshot,
            TriggerPoint::Save,
            0xBAD,
        ));
        h.attach_faults(&inj);

        // Process A loads a line, then is preempted; the save is corrupted
        // in flight.
        h.access(0, 0, AccessKind::Load, 0x9000, 100);
        let snap_a = h.save_context(0, 0, 200);
        assert_eq!(inj.injected(), 1);
        h.restore_context(0, 0, None, 200);

        // A resumes: the checksum mismatch must force a full reset, so even
        // A's own line costs a first access again — degraded, never stale.
        h.restore_context(0, 0, Some(&snap_a), 300);
        assert_eq!(inj.detected(), 3, "all three levels detected");
        let a = h.access(0, 0, AccessKind::Load, 0x9000, 400);
        assert!(a.l1_tag_hit);
        assert!(a.first_access_l1);
    }

    #[test]
    fn save_time_drop_restores_as_fresh() {
        use timecache_core::{FaultPlan, TriggerPoint};

        let mut h = hier(tc(), 1);
        let inj = FaultInjector::new(FaultPlan::new(
            FaultKind::DropSnapshot,
            TriggerPoint::Save,
            7,
        ));
        h.attach_faults(&inj);
        h.access(0, 0, AccessKind::Load, 0x9000, 100);
        let snap_a = h.save_context(0, 0, 200);
        assert_eq!(snap_a.storage_bytes(), 0, "nothing was saved");
        h.restore_context(0, 0, None, 200);
        h.restore_context(0, 0, Some(&snap_a), 300);
        let a = h.access(0, 0, AccessKind::Load, 0x9000, 400);
        assert!(a.first_access_l1, "fresh restore: own line re-paid");
    }
}
