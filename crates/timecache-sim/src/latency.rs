//! Latency model for the memory hierarchy.

/// Access latencies in core cycles.
///
/// Defaults approximate the paper's simulated system (gem5 TimingSimpleCPU
/// at 2 GHz with classic caches): an L1 hit is fast, the LLC an order of
/// magnitude slower, DRAM another order.
///
/// # Examples
///
/// ```
/// use timecache_sim::LatencyConfig;
///
/// let lat = LatencyConfig::default();
/// assert!(lat.l1_hit < lat.llc_hit && lat.llc_hit < lat.dram);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// Latency to get data from the shared LLC (includes L1 lookup).
    pub llc_hit: u64,
    /// Latency to get data from DRAM (includes L1+LLC lookups).
    pub dram: u64,
    /// Latency to get data from a remote core's private cache via the
    /// coherence protocol (dirty-line forwarding). Between `llc_hit` and
    /// `dram` on real parts; the gap is what the invalidate+transfer attack
    /// of Section VII-B measures.
    pub remote_l1: u64,
    /// `clflush` completion time when the line was present somewhere
    /// (write-back + invalidate).
    pub flush_present: u64,
    /// `clflush` completion time when the line was absent (the instruction
    /// aborts early — the timing difference flush+flush exploits,
    /// Section VII-C).
    pub flush_absent: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 2,
            llc_hit: 30,
            dram: 200,
            remote_l1: 60,
            flush_present: 40,
            flush_absent: 12,
        }
    }
}

impl LatencyConfig {
    /// Validates ordering invariants the attack analyses rely on.
    ///
    /// Returns a human-readable description of the first violated
    /// constraint, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.l1_hit == 0 {
            return Err("l1_hit must be nonzero".into());
        }
        if self.l1_hit >= self.llc_hit {
            return Err(format!(
                "l1_hit ({}) must be below llc_hit ({})",
                self.l1_hit, self.llc_hit
            ));
        }
        if self.llc_hit >= self.remote_l1 {
            return Err(format!(
                "llc_hit ({}) must be below remote_l1 ({})",
                self.llc_hit, self.remote_l1
            ));
        }
        if self.remote_l1 >= self.dram {
            return Err(format!(
                "remote_l1 ({}) must be below dram ({})",
                self.remote_l1, self.dram
            ));
        }
        if self.flush_absent >= self.flush_present {
            return Err(format!(
                "flush_absent ({}) must be below flush_present ({})",
                self.flush_absent, self.flush_present
            ));
        }
        Ok(())
    }

    /// The hit/miss decision threshold an attacker would calibrate: halfway
    /// between an L1 hit and an LLC hit, so any service beyond the private
    /// cache reads as "slow".
    pub fn reload_threshold(&self) -> u64 {
        (self.l1_hit + self.llc_hit) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        LatencyConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_inversions() {
        let mut lat = LatencyConfig::default();
        lat.dram = lat.llc_hit;
        assert!(lat.validate().is_err());

        let mut lat = LatencyConfig::default();
        lat.flush_absent = lat.flush_present;
        assert!(lat.validate().unwrap_err().contains("flush_absent"));
    }

    #[test]
    fn threshold_separates_l1_from_rest() {
        let lat = LatencyConfig::default();
        let t = lat.reload_threshold();
        assert!(lat.l1_hit < t);
        assert!(lat.llc_hit > t);
        assert!(lat.dram > t);
    }
}
