//! Cache geometry: size, associativity, line size, and derived quantities.

use std::fmt;

/// The physical shape of one cache level.
///
/// # Examples
///
/// ```
/// use timecache_sim::CacheGeometry;
///
/// // The paper's LLC: 2 MB, 16-way, 64 B lines.
/// let g = CacheGeometry::new(2 * 1024 * 1024, 16, 64);
/// assert_eq!(g.num_lines(), 32768);
/// assert_eq!(g.num_sets(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
    line_size: u64,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two, `ways` is nonzero, and
    /// `size_bytes` is a multiple of `ways * line_size` with a power-of-two
    /// number of sets.
    pub fn new(size_bytes: u64, ways: u32, line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two, got {line_size}"
        );
        assert!(ways > 0, "cache must have at least one way");
        assert!(
            size_bytes.is_multiple_of(ways as u64 * line_size),
            "size {size_bytes} is not a multiple of ways*line_size"
        );
        let sets = size_bytes / (ways as u64 * line_size);
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two, got {sets}"
        );
        CacheGeometry {
            size_bytes,
            ways,
            line_size,
        }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line (block) size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_size)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.size_bytes / self.line_size) as usize
    }

    /// Flat line index for (set, way), the layout used for TimeCache state.
    pub fn line_index(&self, set: u64, way: u32) -> usize {
        debug_assert!(set < self.num_sets() && way < self.ways);
        (set * self.ways as u64 + way as u64) as usize
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB, {}-way, {} B lines",
            self.size_bytes / 1024,
            self.ways,
            self.line_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.num_lines(), 512);
    }

    #[test]
    fn paper_llc_sizes() {
        for (mb, lines) in [(2u64, 32768usize), (4, 65536), (8, 131072)] {
            let g = CacheGeometry::new(mb * 1024 * 1024, 16, 64);
            assert_eq!(g.num_lines(), lines, "{mb} MB");
        }
    }

    #[test]
    fn line_index_is_flat() {
        let g = CacheGeometry::new(4096, 4, 64);
        assert_eq!(g.num_sets(), 16);
        assert_eq!(g.line_index(0, 0), 0);
        assert_eq!(g.line_index(1, 0), 4);
        assert_eq!(g.line_index(15, 3), 63);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_set_count() {
        CacheGeometry::new(3 * 1024, 1, 64);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        CacheGeometry::new(1024, 0, 64);
    }

    #[test]
    fn display_is_informative() {
        let g = CacheGeometry::new(32 * 1024, 8, 64);
        assert_eq!(g.to_string(), "32 KiB, 8-way, 64 B lines");
    }
}
