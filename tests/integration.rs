//! Cross-crate integration tests: whole-system behaviour spanning the
//! core mechanism, the simulator, the OS model, the workloads, and the
//! attacks.

use timecache::attacks::harness::{run_microbenchmark, timecache_mode};
use timecache::attacks::rsa_attack::run_rsa_attack;
use timecache::core::TimeCacheConfig;
use timecache::os::{programs::StridedLoop, System, SystemConfig};
use timecache::sim::SecurityMode;
use timecache::workloads::rsa::{modexp, Mpi};
use timecache::workloads::SpecBenchmark;

/// The paper's Section VI-A.1 result: the microbenchmark attack sees hits
/// at baseline and zero hits under TimeCache.
#[test]
fn microbenchmark_end_to_end() {
    let base = run_microbenchmark(SecurityMode::Baseline, 4);
    assert!(base.hits > 0, "baseline must leak: {base:?}");
    let tc = run_microbenchmark(timecache_mode(), 4);
    assert_eq!(tc.hits, 0, "timecache must not leak: {tc:?}");
    assert_eq!(tc.probes, base.probes, "identical probe schedules");
}

/// The paper's Section VI-A.2 result, end to end with real bignum math.
#[test]
fn rsa_key_extraction_end_to_end() {
    let key = Mpi::from_u64(0xDEAD_BEEF);
    let base = run_rsa_attack(SecurityMode::Baseline, &key);
    assert!(base.accuracy > 0.95, "baseline recovery {base:?}");
    let tc = run_rsa_attack(timecache_mode(), &key);
    assert_eq!(tc.decoded_windows, 0, "timecache leak: {tc:?}");
}

/// The victim's arithmetic stays correct while under attack (the defense
/// must not perturb data, only timing).
#[test]
fn rsa_math_is_correct() {
    let base = Mpi::from_u64(0x1234_5678_9ABC_DEF1);
    let key = Mpi::from_u64(0xC3A5);
    let modulus = Mpi::from_hex("f123456789abcdef0123456789abcdef");
    let expected = modexp(&base, &key, &modulus);
    // Recompute step-by-step as the victim program does.
    let mut me = timecache::workloads::rsa::ModExp::new(base, key, modulus);
    while me.step().is_some() {}
    assert_eq!(me.result(), &expected);
}

/// Overhead sanity: engaging TimeCache on a shared-heavy pair costs a few
/// percent at most and never speeds things up by much.
#[test]
fn overhead_is_small_for_spec_pair() {
    let run = |security: SecurityMode| {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.security = security;
        cfg.quantum_cycles = 100_000;
        let mut sys = System::new(cfg).unwrap();
        let bench = SpecBenchmark::H264ref;
        sys.spawn(Box::new(bench.workload(0)), 0, 0, Some(150_000));
        sys.spawn(Box::new(bench.workload(1)), 0, 0, Some(150_000));
        let r = sys.run(u64::MAX);
        assert!(r.all_completed());
        r.total_cycles
    };
    let base = run(SecurityMode::Baseline);
    let tc = run(SecurityMode::TimeCache(TimeCacheConfig::default()));
    let ratio = tc as f64 / base as f64;
    assert!(
        (0.97..1.15).contains(&ratio),
        "normalized execution time {ratio}"
    );
}

/// Determinism: identical configurations produce identical reports.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.security = timecache_mode();
        cfg.quantum_cycles = 50_000;
        let mut sys = System::new(cfg).unwrap();
        let bench = SpecBenchmark::Gobmk;
        sys.spawn(Box::new(bench.workload(0)), 0, 0, Some(80_000));
        sys.spawn(Box::new(bench.workload(1)), 0, 0, Some(80_000));
        sys.run(u64::MAX)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.context_switches, b.context_switches);
}

/// The baseline never records first-access misses; TimeCache records them
/// only at caches the contexts actually share.
#[test]
fn first_access_accounting_is_mode_consistent() {
    let run = |security: SecurityMode| {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.security = security;
        cfg.quantum_cycles = 50_000;
        let mut sys = System::new(cfg).unwrap();
        sys.spawn(
            Box::new(StridedLoop::new(0x6000_0000_0000, 64 * 1024, 64)),
            0,
            0,
            Some(60_000),
        );
        sys.spawn(
            Box::new(StridedLoop::new(0x6000_0000_0000, 64 * 1024, 64)),
            0,
            0,
            Some(60_000),
        );
        sys.run(u64::MAX)
    };
    let base = run(SecurityMode::Baseline);
    assert_eq!(base.stats.total_first_access(), 0);
    let tc = run(timecache_mode());
    assert!(
        tc.stats.total_first_access() > 0,
        "shared streaming must produce first accesses"
    );
}

/// Narrow (rollover-heavy) timestamps may cost extra misses but never
/// re-open the channel.
#[test]
fn rollover_preserves_security() {
    let narrow = SecurityMode::TimeCache(TimeCacheConfig::new(18));
    let r = run_microbenchmark(narrow, 3);
    assert_eq!(r.hits, 0, "rollover must never grant stale hits: {r:?}");
}

/// SMT isolation end to end: a sibling-thread spy is blind under TimeCache
/// without any context switch.
#[test]
fn smt_isolation_end_to_end() {
    use timecache::attacks::analysis::Threshold;
    use timecache::attacks::flush_reload::{summarize, FlushReloadAttacker};
    use timecache::os::programs::SharedWriter;

    let run = |security: SecurityMode| {
        let mut cfg = SystemConfig::default();
        cfg.hierarchy.smt_per_core = 2;
        cfg.hierarchy.security = security;
        cfg.quantum_cycles = 50_000;
        let mut sys = System::new(cfg).unwrap();
        let lat = sys.config().hierarchy.latencies;
        let targets: Vec<u64> = (0..32).map(|i| 0x6000_0000_0000 + i * 64).collect();
        let (spy, log) = FlushReloadAttacker::new(targets, Threshold::calibrate(&lat), 5);
        sys.spawn(
            Box::new(SharedWriter::new(0x6000_0000_0000, 32, 64)),
            0,
            0,
            Some(20_000),
        );
        sys.spawn(Box::new(spy), 0, 1, None);
        sys.run(u64::MAX);
        summarize(&log)
    };
    assert!(run(SecurityMode::Baseline).hits > 0);
    assert_eq!(run(timecache_mode()).hits, 0);
}
