//! Replays every checked-in regression trace in `tests/corpus/` through the
//! differential oracle on every `cargo test`. Any trace the random
//! generator ever shrinks out of a real divergence belongs here, next to
//! the hand-written edge cases (rollover at save, clflush between
//! save/restore, fork+COW sharing, SMT-shared tag planes).

use std::path::PathBuf;
use timecache_oracle::{replay, TraceDoc};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_traces_replay_without_divergence() {
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable trace");
        let doc =
            TraceDoc::from_text(&text).unwrap_or_else(|e| panic!("{name}: malformed trace: {e}"));
        if let Err(d) = replay(&doc, None) {
            panic!("{name}: reference model and simulator diverged: {d}");
        }
        checked += 1;
    }
    assert!(checked >= 4, "corpus should hold the edge-case traces");
}

#[test]
fn corpus_traces_are_canonically_formatted() {
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "txt") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable trace");
        let doc = TraceDoc::from_text(&text).expect("valid trace");
        // Comments aside, serialization must round-trip: the corpus format
        // is the interchange format for shrunken divergences.
        assert_eq!(
            TraceDoc::from_text(&doc.to_text()).expect("round-trip"),
            doc,
            "{}",
            path.display()
        );
    }
}
