//! Cross-crate integration: the fork/COW deployment scenario the paper's
//! introduction motivates, end to end through the VM substrate, the
//! scheduler, the hierarchy, and the attack framework.

use timecache::attacks::analysis::Threshold;
use timecache::attacks::flush_reload::{summarize, FlushReloadAttacker};
use timecache::attacks::harness::timecache_mode;
use timecache::os::vm::{Vm, VmProgram, PAGE_SIZE};
use timecache::os::{DataKind, Op, Program, System, SystemConfig};
use timecache::sim::{Addr, SecurityMode};

/// Reads every line of its pages round-robin; writes one specific line
/// periodically (to exercise COW).
#[derive(Debug)]
struct PageWalker {
    vbase: Addr,
    pages: u64,
    step: u64,
}

impl Program for PageWalker {
    fn next_op(&mut self) -> Op {
        let lines = self.pages * PAGE_SIZE / 64;
        let addr = self.vbase + (self.step % lines) * 64;
        self.step += 1;
        let kind = if self.step.is_multiple_of(997) {
            DataKind::Store
        } else {
            DataKind::Load
        };
        Op::Instr {
            pc: self.vbase + self.pages * PAGE_SIZE,
            data: Some((kind, addr)),
        }
    }

    fn name(&self) -> &str {
        "page-walker"
    }
}

fn run(security: SecurityMode) -> (u64, u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 50_000;
    let mut sys = System::new(cfg).unwrap();
    let lat = sys.config().hierarchy.latencies;

    let vm = Vm::new();
    let parent = vm.new_space();
    let vbase = 0x40_0000u64;
    vm.map_anon(parent, vbase, 5 * PAGE_SIZE); // 4 data pages + text
    let child = vm.fork(parent);

    let targets: Vec<Addr> = (0..4)
        .map(|i| vm.translate(parent, vbase + i * PAGE_SIZE, false).0)
        .collect();
    let (spy, log) = FlushReloadAttacker::new(targets, Threshold::cross_core(&lat), 20);

    sys.spawn(
        Box::new(VmProgram::new(
            PageWalker {
                vbase,
                pages: 4,
                step: 0,
            },
            vm.clone(),
            parent,
        )),
        0,
        0,
        Some(40_000),
    );
    sys.spawn(
        Box::new(VmProgram::new(
            PageWalker {
                vbase,
                pages: 4,
                step: 13,
            },
            vm.clone(),
            child,
        )),
        0,
        0,
        Some(40_000),
    );
    sys.spawn(Box::new(spy), 0, 0, None);
    sys.run(u64::MAX);
    let s = summarize(&log);
    (s.hits, s.probes, vm.cow_faults())
}

#[test]
fn fork_cow_leaks_at_baseline_and_not_under_timecache() {
    let (base_hits, base_probes, base_faults) = run(SecurityMode::Baseline);
    assert!(base_hits > 0, "baseline spy must see fork-shared residency");
    assert_eq!(base_probes, 80);
    assert!(base_faults > 0, "walkers must trigger COW divergence");

    let (tc_hits, tc_probes, tc_faults) = run(timecache_mode());
    assert_eq!(tc_hits, 0, "TimeCache must blind the spy");
    assert_eq!(tc_probes, 80);
    assert_eq!(
        tc_faults, base_faults,
        "the defense must not change COW semantics"
    );
}

#[test]
fn cow_divergence_isolates_write_traffic() {
    // After the child writes a page, the parent's reads of that page keep
    // hitting the original frame: physically different lines.
    let vm = Vm::new();
    let parent = vm.new_space();
    vm.map_anon(parent, 0x1000, PAGE_SIZE);
    let child = vm.fork(parent);
    let (orig, _) = vm.translate(parent, 0x1040, false);
    let (child_w, _) = vm.translate(child, 0x1040, true);
    assert_ne!(orig, child_w);
    // Parent's view unchanged; child's subsequent reads see its copy.
    assert_eq!(vm.translate(parent, 0x1040, false).0, orig);
    assert_eq!(vm.translate(child, 0x1040, false).0, child_w);
}
