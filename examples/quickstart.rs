//! Quickstart: build a simulated machine, time-slice two processes on one
//! core, and compare a conventional cache against TimeCache.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use timecache::core::TimeCacheConfig;
use timecache::os::{programs::StridedLoop, System, SystemConfig};
use timecache::sim::SecurityMode;

fn run(security: SecurityMode) -> (u64, u64) {
    let mut cfg = SystemConfig::default(); // Table I hierarchy, 1 ms quanta
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 100_000;
    let mut sys = System::new(cfg).expect("valid config");

    // Two processes sharing a 128 KiB buffer (e.g. a deduplicated page
    // range): both stream through the same physical lines.
    let shared_base = 0x6000_0000_0000;
    sys.spawn(
        Box::new(StridedLoop::new(shared_base, 128 * 1024, 64)),
        0,
        0,
        Some(200_000),
    );
    sys.spawn(
        Box::new(StridedLoop::new(shared_base, 128 * 1024, 64)),
        0,
        0,
        Some(200_000),
    );

    let report = sys.run(u64::MAX);
    assert!(report.all_completed());
    (report.total_cycles, report.stats.total_first_access())
}

fn main() {
    let (base_cycles, base_fa) = run(SecurityMode::Baseline);
    let (tc_cycles, tc_fa) = run(SecurityMode::TimeCache(TimeCacheConfig::default()));

    println!("two processes, one core, 128 KiB of shared lines:");
    println!("  baseline : {base_cycles:>12} cycles, {base_fa:>6} first-access misses");
    println!("  timecache: {tc_cycles:>12} cycles, {tc_fa:>6} first-access misses");
    println!(
        "  normalized execution time: {:.4} (overhead {:.2}%)",
        tc_cycles as f64 / base_cycles as f64,
        (tc_cycles as f64 / base_cycles as f64 - 1.0) * 100.0
    );
    println!();
    println!("TimeCache delays each process's *first* access to lines the other");
    println!("process cached (the first-access misses above); steady-state sharing");
    println!("is unaffected, which is why the overhead stays small.");
}
