//! Trace record/replay: capture a workload's op stream once, then replay
//! it bit-for-bit — useful for regression-pinning interesting runs and for
//! feeding identical traces to different cache configurations.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use timecache::core::TimeCacheConfig;
use timecache::os::{Recorder, System, SystemConfig, Trace, TraceProgram};
use timecache::sim::SecurityMode;
use timecache::workloads::SpecBenchmark;

fn run(program: Box<dyn timecache::os::Program>, security: SecurityMode) -> (u64, f64) {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    let mut sys = System::new(cfg).expect("valid config");
    sys.spawn(program, 0, 0, Some(200_000));
    let r = sys.run(u64::MAX);
    (r.total_cycles, r.llc_mpki())
}

/// Two replays of the same trace time-sliced on one core — the paper's
/// two-instance scenario, on a pinned access stream.
fn run_pair(trace: &Trace, security: SecurityMode) -> u64 {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 500_000;
    let mut sys = System::new(cfg).expect("valid config");
    sys.spawn(
        Box::new(TraceProgram::new(trace.clone(), "replay-a")),
        0,
        0,
        Some(200_000),
    );
    sys.spawn(
        Box::new(TraceProgram::new(trace.clone(), "replay-b")),
        0,
        0,
        Some(200_000),
    );
    sys.run(u64::MAX).total_cycles
}

fn main() {
    // Record one instance of the gobmk preset.
    let (recorder, handle) = Recorder::new(SpecBenchmark::Gobmk.workload(0));
    let (cycles_live, mpki_live) = run(Box::new(recorder), SecurityMode::Baseline);
    let trace: Trace = handle.borrow().clone();
    println!(
        "recorded {} ops from gobmk: {} cycles, LLC MPKI {:.4}",
        trace.len(),
        cycles_live,
        mpki_live
    );

    // Replay: identical results, by construction.
    let (cycles_replay, mpki_replay) = run(
        Box::new(TraceProgram::new(trace.clone(), "gobmk-replay")),
        SecurityMode::Baseline,
    );
    println!("replayed              : {cycles_replay} cycles, LLC MPKI {mpki_replay:.4}");
    assert_eq!(cycles_live, cycles_replay);

    // Two time-sliced replays of the same trace — the paper's two-instance
    // scenario — under both modes: the defense's cost on this *pinned*
    // access stream, with no workload randomness in the comparison.
    let pair_base = run_pair(&trace, SecurityMode::Baseline);
    let pair_tc = run_pair(&trace, SecurityMode::TimeCache(TimeCacheConfig::default()));
    println!(
        "2x replay, baseline   : {pair_base} cycles\n2x replay, timecache  : {} cycles (overhead {:+.3}%)",
        pair_tc,
        (pair_tc as f64 / pair_base as f64 - 1.0) * 100.0,
    );
    println!(
        "(two replays of one trace share *every* line — a fully-deduplicated\n\
         worst case with no warm-up, so the first-access cost is maximal;\n\
         the calibrated benchmark pairs in `experiments fig7` measure ~1%)"
    );

    // Round-trip through the text serialization.
    let text = trace.to_text();
    let parsed = Trace::from_text(&text).expect("well-formed trace text");
    assert_eq!(parsed, trace);
    println!("text round-trip OK ({} KiB serialized)", text.len() / 1024);
}
