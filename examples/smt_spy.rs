//! SMT scenario: attacker and victim run *simultaneously* on the two
//! hardware threads of one core — no context switches involved. TimeCache's
//! per-hardware-context s-bits isolate them anyway (the paper's threat
//! model explicitly covers the hyperthread attacker).
//!
//! ```text
//! cargo run --release --example smt_spy
//! ```

use timecache::attacks::analysis::Threshold;
use timecache::attacks::flush_reload::{summarize, FlushReloadAttacker};
use timecache::core::TimeCacheConfig;
use timecache::os::programs::SharedWriter;
use timecache::os::{System, SystemConfig};
use timecache::sim::SecurityMode;
use timecache::workloads::layout;

fn run(security: SecurityMode) -> (u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.smt_per_core = 2; // one core, two hardware threads
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 50_000;
    let mut sys = System::new(cfg).expect("valid config");

    let lat = sys.config().hierarchy.latencies;
    let lines = 64u64;
    let targets: Vec<u64> = (0..lines)
        .map(|i| layout::SHARED_SEGMENT + i * layout::LINE)
        .collect();
    let (spy, log) = FlushReloadAttacker::new(targets, Threshold::calibrate(&lat), 10);

    // Victim on thread 0, spy on thread 1 of the same core: they share the
    // L1I/L1D *and* the LLC at all times.
    sys.spawn(
        Box::new(SharedWriter::new(
            layout::SHARED_SEGMENT,
            lines,
            layout::LINE,
        )),
        0,
        0,
        Some(50_000),
    );
    sys.spawn(Box::new(spy), 0, 1, None);

    sys.run(u64::MAX);
    let s = summarize(&log);
    (s.hits, s.probes)
}

fn main() {
    let (base_hits, base_probes) = run(SecurityMode::Baseline);
    let (tc_hits, tc_probes) = run(SecurityMode::TimeCache(TimeCacheConfig::default()));

    println!("flush+reload from a sibling hyperthread (shared L1 + LLC):");
    println!("  baseline : {base_hits}/{base_probes} probe hits");
    println!("  timecache: {tc_hits}/{tc_probes} probe hits");
    println!();
    if base_hits > 0 && tc_hits == 0 {
        println!("verdict: the SMT spy reads the victim's accesses on a conventional");
        println!("cache and is completely blind under TimeCache — per-hardware-context");
        println!("s-bits need no context switch to take effect.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
