//! A small sensitivity sweep (the Fig. 10 experiment in miniature): how
//! the TimeCache overhead shrinks as the LLC grows.
//!
//! ```text
//! cargo run --release --example llc_sweep
//! ```

use timecache::core::TimeCacheConfig;
use timecache::os::{System, SystemConfig};
use timecache::sim::SecurityMode;
use timecache::workloads::SpecBenchmark;

fn pair_cycles(security: SecurityMode, llc_bytes: u64, bench: SpecBenchmark) -> u64 {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy = cfg.hierarchy.clone().with_llc_bytes(llc_bytes);
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 200_000;
    let mut sys = System::new(cfg).expect("valid config");
    sys.spawn(Box::new(bench.workload(0)), 0, 0, Some(300_000));
    sys.spawn(Box::new(bench.workload(1)), 0, 0, Some(300_000));
    let report = sys.run(u64::MAX);
    assert!(report.all_completed());
    report.total_cycles
}

fn main() {
    let bench = SpecBenchmark::Perlbench; // shared-text-heavy: worst case
    println!("2X{} overhead vs LLC size:", bench.name());
    for mb in [2u64, 4, 8] {
        let bytes = mb * 1024 * 1024;
        let base = pair_cycles(SecurityMode::Baseline, bytes, bench);
        let tc = pair_cycles(
            SecurityMode::TimeCache(TimeCacheConfig::default()),
            bytes,
            bench,
        );
        println!(
            "  {mb} MB LLC: normalized execution time {:.4} ({:+.2}%)",
            tc as f64 / base as f64,
            (tc as f64 / base as f64 - 1.0) * 100.0
        );
    }
    println!();
    println!("larger caches evict shared lines less often, so fewer first-access");
    println!("misses recur after context switches — the paper's Fig. 10 trend.");
}
