//! Keystroke snooping through a shared UI library (the paper cites
//! cache-based keystroke attacks on graphics libraries as a motivating
//! reuse-channel exploit).
//!
//! The victim is a text-entry loop: for each typed character it calls the
//! shared library's glyph-rendering routine for that character, touching a
//! character-indexed code/data line. The spy flush+reloads the per-glyph
//! lines and reads the typed text. Under TimeCache the spy sees nothing.
//!
//! ```text
//! cargo run --release --example keystroke_snoop
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use timecache::attacks::analysis::Threshold;
use timecache::attacks::harness::timecache_mode;
use timecache::os::{DataKind, Observation, Op, Program, System, SystemConfig};
use timecache::sim::{Addr, SecurityMode};
use timecache::workloads::layout;

/// Shared glyph-rendering table: one cache line per lowercase letter.
fn glyph_line(c: u8) -> Addr {
    layout::SHARED_LIB_CODE + 0x20_0000 + (c - b'a') as u64 * layout::LINE
}

/// The victim: types one character per wake by "rendering" its glyph.
struct Typist {
    text: &'static [u8],
    next: usize,
    phase: u8,
}

impl Program for Typist {
    fn next_op(&mut self) -> Op {
        match self.phase {
            0 => {
                self.phase = 1;
                let c = self.text[self.next % self.text.len()];
                Op::Instr {
                    pc: 0x77E0_0000,
                    data: Some((DataKind::Load, glyph_line(c))),
                }
            }
            _ => {
                self.phase = 0;
                self.next += 1;
                if self.next > self.text.len() + 4 {
                    Op::Done
                } else {
                    Op::Yield { pc: 0x77E0_0000 }
                }
            }
        }
    }

    fn name(&self) -> &str {
        "typist"
    }
}

/// The spy: per window, flush all 26 glyph lines, yield, reload each and
/// record the (unique) hot one.
struct GlyphSpy {
    threshold: Threshold,
    windows: u32,
    window: u32,
    phase: u8, // 0 = flushing, 1 = yielded, 2 = probing
    cursor: u8,
    hot: Option<u8>,
    log: Rc<RefCell<Vec<Option<u8>>>>,
}

impl Program for GlyphSpy {
    fn next_op(&mut self) -> Op {
        let pc = 0x6710_0000;
        match self.phase {
            0 => {
                let c = b'a' + self.cursor;
                if self.cursor + 1 < 26 {
                    self.cursor += 1;
                } else {
                    self.cursor = 0;
                    self.phase = 1;
                }
                Op::Flush {
                    pc,
                    target: glyph_line(c),
                }
            }
            1 => {
                self.phase = 2;
                self.hot = None;
                Op::Yield { pc }
            }
            2 => Op::Instr {
                pc,
                data: Some((DataKind::Load, glyph_line(b'a' + self.cursor))),
            },
            _ => Op::Done,
        }
    }

    fn observe(&mut self, obs: Observation) {
        if self.phase == 2 {
            if let Some(latency) = obs.data_latency {
                if self.threshold.is_hit(latency) {
                    self.hot = Some(b'a' + self.cursor);
                }
                if self.cursor + 1 < 26 {
                    self.cursor += 1;
                } else {
                    self.log.borrow_mut().push(self.hot);
                    self.cursor = 0;
                    self.window += 1;
                    self.phase = if self.window >= self.windows { 3 } else { 0 };
                }
            }
        }
    }

    fn name(&self) -> &str {
        "glyph-spy"
    }
}

fn run(security: SecurityMode, text: &'static [u8]) -> String {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 200_000;
    let mut sys = System::new(cfg).expect("valid config");
    let lat = sys.config().hierarchy.latencies;

    let log = Rc::new(RefCell::new(Vec::new()));
    sys.spawn(
        Box::new(GlyphSpy {
            threshold: Threshold::cross_core(&lat),
            windows: text.len() as u32,
            window: 0,
            phase: 0,
            cursor: 0,
            hot: None,
            log: Rc::clone(&log),
        }),
        0,
        0,
        None,
    );
    sys.spawn(
        Box::new(Typist {
            text,
            next: 0,
            phase: 0,
        }),
        0,
        0,
        None,
    );
    sys.run(400_000_000);

    let decoded = log.borrow();
    decoded
        .iter()
        .map(|c| c.map(|b| b as char).unwrap_or('_'))
        .collect()
}

fn main() {
    // Letters only — spaces render as misses either way.
    let typed: &'static [u8] = b"thequickbrownfox";
    println!("victim typed    : {}", String::from_utf8_lossy(typed));
    let baseline = run(SecurityMode::Baseline, typed);
    println!("baseline spy saw: {baseline}");
    let defended = run(timecache_mode(), typed);
    println!("timecache spy saw: {defended}");
    println!();
    let recovered = baseline
        .bytes()
        .zip(typed.iter())
        .filter(|(a, b)| *a == **b)
        .count();
    if recovered > typed.len() * 3 / 4 && defended.bytes().all(|b| b == b'_') {
        println!("verdict: keystrokes are readable through the shared glyph table on a");
        println!("conventional cache and invisible under TimeCache.");
    } else {
        println!("verdict: UNEXPECTED — see above.");
    }
}
