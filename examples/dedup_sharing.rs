//! Memory deduplication scenario: the paper argues TimeCache lets system
//! operators deploy page deduplication (KSM, container layer sharing,
//! fork/COW) without opening a reuse side channel.
//!
//! ```text
//! cargo run --release --example dedup_sharing
//! ```
//!
//! Two "tenants" run the same application image (same binary text, same
//! deduplicated read-only data). A third party mounts a flush+reload probe
//! on one of the deduplicated lines to watch tenant activity. We measure
//! (a) the performance cost TimeCache adds to the tenants and (b) whether
//! the probe learns anything.

use timecache::attacks::analysis::Threshold;
use timecache::attacks::flush_reload::{summarize, FlushReloadAttacker};
use timecache::core::TimeCacheConfig;
use timecache::os::{System, SystemConfig};
use timecache::sim::SecurityMode;
use timecache::workloads::layout;
use timecache::workloads::synthetic::{SyntheticParams, SyntheticWorkload};

fn tenant(instance: usize) -> SyntheticWorkload {
    let params = SyntheticParams {
        name: format!("tenant-{instance}"),
        // Healthy reuse of the deduplicated segment.
        shared_data_frac: 0.3,
        shared_data_bytes: 1 << 20,
        fresh_line_per_kinstr: 1.0,
        seed: 7 + instance as u64,
        ..SyntheticParams::default()
    };
    // Same bench id: both tenants run the same image (shared text).
    SyntheticWorkload::new(params, 42, instance)
}

fn run(security: SecurityMode) -> (u64, u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 500_000;
    let mut sys = System::new(cfg).expect("valid config");

    let lat = sys.config().hierarchy.latencies;
    // The spy probes 8 deduplicated lines.
    let targets: Vec<u64> = (0..8)
        .map(|i| layout::SHARED_SEGMENT + i * layout::LINE)
        .collect();
    // The tenants' churn demotes probed lines from the L1 to the LLC, so
    // the spy distinguishes "cached anywhere" (LLC latency) from DRAM.
    let (spy, log) = FlushReloadAttacker::new(targets, Threshold::cross_core(&lat), 50);

    // Warm-up: let both tenants pay their one-time first-touch cost for
    // the deduplicated pages (the steady state is what an operator would
    // experience), then measure a longer window with the spy active.
    let a = sys.spawn(Box::new(tenant(0)), 0, 0, Some(500_000));
    let b = sys.spawn(Box::new(tenant(1)), 0, 0, Some(500_000));
    sys.run(u64::MAX);
    let warm_cycles = sys.total_cycles();

    sys.spawn(Box::new(spy), 0, 0, None);
    sys.extend_target(a, 2_000_000);
    sys.extend_target(b, 2_000_000);
    let report = sys.run(u64::MAX);
    let summary = summarize(&log);
    (
        report.total_cycles - warm_cycles,
        summary.hits,
        summary.probes,
    )
}

fn main() {
    let (base_cycles, base_hits, base_probes) = run(SecurityMode::Baseline);
    let (tc_cycles, tc_hits, tc_probes) = run(SecurityMode::TimeCache(TimeCacheConfig::default()));

    println!("two tenants on one deduplicated image + a flush+reload spy:");
    println!("  baseline : spy sees {base_hits}/{base_probes} hits  (tenant activity exposed)");
    println!("  timecache: spy sees {tc_hits}/{tc_probes} hits");
    println!(
        "  tenant cost of the defense: {:.2}% extra cycles",
        (tc_cycles as f64 / base_cycles as f64 - 1.0) * 100.0
    );
    println!();
    if tc_hits == 0 && base_hits > 0 {
        println!("verdict: deduplication is safe to deploy under TimeCache — the spy");
        println!("learns nothing while tenants keep the single-copy memory savings.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
