//! Fork and copy-on-write under TimeCache: the deployment the paper's
//! introduction argues for. A parent process forks a worker; text and data
//! stay physically shared until written (COW), maximizing memory savings —
//! and a flush+reload spy watching the shared pages learns the workers'
//! access pattern on a conventional cache but nothing under TimeCache.
//!
//! ```text
//! cargo run --release --example fork_cow
//! ```

use timecache::attacks::analysis::Threshold;
use timecache::attacks::flush_reload::{summarize, FlushReloadAttacker};
use timecache::attacks::harness::timecache_mode;
use timecache::os::vm::{Vm, VmProgram, PAGE_SIZE};
use timecache::os::{DataKind, Op, Program, System, SystemConfig};
use timecache::sim::{Addr, SecurityMode};

/// A worker walking its (virtually addressed) data pages: reads mostly,
/// with occasional writes that trigger COW divergence.
#[derive(Debug)]
struct Worker {
    vbase: Addr,
    pages: u64,
    step: u64,
    write_every: u64,
}

impl Program for Worker {
    fn next_op(&mut self) -> Op {
        let line = self.step % (self.pages * PAGE_SIZE / 64);
        let addr = self.vbase + line * 64;
        self.step += 1;
        let kind = if self.step.is_multiple_of(self.write_every) {
            DataKind::Store
        } else {
            DataKind::Load
        };
        Op::Instr {
            pc: self.vbase + self.pages * PAGE_SIZE, // text page after data
            data: Some((kind, addr)),
        }
    }

    fn name(&self) -> &str {
        "worker"
    }
}

fn run(security: SecurityMode) -> (u64, u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.hierarchy.security = security;
    cfg.quantum_cycles = 100_000;
    let mut sys = System::new(cfg).expect("valid config");
    let lat = sys.config().hierarchy.latencies;

    // Parent address space: 8 data pages + 1 text page, then fork.
    let vm = Vm::new();
    let parent = vm.new_space();
    let vbase = 0x10_0000u64;
    vm.map_anon(parent, vbase, 9 * PAGE_SIZE);
    let child = vm.fork(parent);

    // The spy targets the *physical* pages the fork shares (a hosting
    // provider's dedup scanner would know them; here we just translate).
    let targets: Vec<Addr> = (0..8)
        .map(|i| vm.translate(parent, vbase + i * PAGE_SIZE, false).0)
        .collect();
    let (spy, log) = FlushReloadAttacker::new(targets, Threshold::cross_core(&lat), 40);

    sys.spawn(
        Box::new(VmProgram::new(
            Worker {
                vbase,
                pages: 8,
                step: 0,
                write_every: 9973,
            },
            vm.clone(),
            parent,
        )),
        0,
        0,
        Some(120_000),
    );
    sys.spawn(
        Box::new(VmProgram::new(
            Worker {
                vbase,
                pages: 8,
                step: 1,
                write_every: 7919,
            },
            vm.clone(),
            child,
        )),
        0,
        0,
        Some(120_000),
    );
    sys.spawn(Box::new(spy), 0, 0, None);

    sys.run(u64::MAX);
    let s = summarize(&log);
    (s.hits, s.probes, vm.cow_faults())
}

fn main() {
    let (base_hits, base_probes, base_faults) = run(SecurityMode::Baseline);
    let (tc_hits, tc_probes, tc_faults) = run(timecache_mode());

    println!("parent + forked child on COW pages, flush+reload spy on the shared frames:");
    println!(
        "  baseline : spy sees {base_hits}/{base_probes} hits; {base_faults} COW faults taken"
    );
    println!("  timecache: spy sees {tc_hits}/{tc_probes} hits; {tc_faults} COW faults taken");
    println!();
    if base_hits > 0 && tc_hits == 0 && base_faults == tc_faults {
        println!("verdict: fork/COW works identically under both modes (same faults,");
        println!("same sharing), but only TimeCache makes the shared frames unobservable —");
        println!("the paper's argument that the defense unlocks dedup/COW deployment.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
