//! Spectre-V1 end to end: a victim service runs a bounds-check-bypass
//! gadget whose transient, secret-indexed load leaves a footprint in a
//! shared probe array; a flush+reload receiver reads the secret byte by
//! byte. TimeCache closes the exfiltration channel, so the same gadget
//! leaks nothing (paper, Section IX).
//!
//! ```text
//! cargo run --release --example spectre_v1
//! ```

use timecache::attacks::harness::timecache_mode;
use timecache::attacks::spectre::run_spectre;
use timecache::sim::SecurityMode;

fn render(recovered: &[Option<u8>]) -> String {
    recovered
        .iter()
        .map(|b| match b {
            Some(c) if c.is_ascii_graphic() || *c == b' ' => *c as char,
            Some(_) => '.',
            None => '_',
        })
        .collect()
}

fn main() {
    let secret = b"squeamish ossifrage";
    println!("victim secret        : {}", String::from_utf8_lossy(secret));

    let baseline = run_spectre(SecurityMode::Baseline, secret);
    println!(
        "baseline recovery    : {}  ({:.0}% of bytes)",
        render(&baseline.recovered),
        baseline.accuracy() * 100.0
    );

    let ftm = run_spectre(SecurityMode::Ftm, secret);
    println!(
        "ftm recovery         : {}  ({:.0}% — FTM only helps across cores)",
        render(&ftm.recovered),
        ftm.accuracy() * 100.0
    );

    let defended = run_spectre(timecache_mode(), secret);
    println!(
        "timecache recovery   : {}  ({:.0}% of bytes)",
        render(&defended.recovered),
        defended.accuracy() * 100.0
    );

    println!();
    if baseline.leaks() && !defended.leaks() {
        println!("verdict: the transient gadget's cache footprint is readable on a");
        println!("conventional cache (and under same-core FTM), and unreadable under");
        println!("TimeCache — breaking the reuse channel breaks Spectre's exfiltration.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
