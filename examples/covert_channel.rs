//! Spectre's favourite covert channel: encoding bits into shared-line
//! residency. A sender touches (1) or skips (0) a shared line once per
//! window; a flush+reload receiver decodes it. TimeCache collapses the
//! channel, which is how it also neutralizes speculative-execution leaks
//! that rely on a reuse channel for exfiltration (paper, Section IX).
//!
//! ```text
//! cargo run --release --example covert_channel
//! ```

use timecache::attacks::covert::run_covert_channel;
use timecache::attacks::harness::timecache_mode;
use timecache::sim::SecurityMode;

fn main() {
    let bits = 256;
    let baseline = run_covert_channel(SecurityMode::Baseline, bits);
    let defended = run_covert_channel(timecache_mode(), bits);

    println!("covert channel over one shared cache line ({bits}-bit payload):");
    println!(
        "  baseline : {:>5.1}% decoded correctly, {:>7.1} usable bits per Mcycle",
        baseline.accuracy() * 100.0,
        baseline.effective_bandwidth()
    );
    println!(
        "  timecache: {:>5.1}% decoded correctly, {:>7.1} usable bits per Mcycle",
        defended.accuracy() * 100.0,
        defended.effective_bandwidth()
    );
    println!();
    if baseline.leaks() && !defended.leaks() {
        println!("verdict: the channel carries the payload faithfully on a conventional");
        println!("cache and collapses to guessing under TimeCache — the exfiltration");
        println!("path Spectre-class attacks depend on is gone.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
