//! The headline security result: the classic flush+reload attack on a
//! GnuPG-style square-and-multiply RSA victim, run against a conventional
//! cache and against TimeCache.
//!
//! ```text
//! cargo run --release --example rsa_attack
//! ```
//!
//! The victim actually computes `base ^ key mod modulus` with the
//! workspace's from-scratch bignum library; its Square/Multiply/Reduce
//! routines live in shared-library code lines the attacker probes.

use timecache::attacks::harness::timecache_mode;
use timecache::attacks::rsa_attack::run_rsa_attack;
use timecache::sim::SecurityMode;
use timecache::workloads::rsa::Mpi;

fn bits_to_string(bits: &[Option<bool>]) -> String {
    bits.iter()
        .map(|b| match b {
            Some(true) => '1',
            Some(false) => '0',
            None => '?',
        })
        .collect()
}

fn main() {
    let key = Mpi::from_u64(0xC3A5_96E7_D188_3C2B);
    let true_bits: String = (0..key.bit_len())
        .rev()
        .skip(1) // MSB initializes the accumulator; never leaked
        .map(|i| if key.bit(i) { '1' } else { '0' })
        .collect();
    println!("secret exponent tail : {true_bits}");

    let baseline = run_rsa_attack(SecurityMode::Baseline, &key);
    println!(
        "baseline recovery    : {} ({:.1}% correct, {}/{} windows decoded)",
        bits_to_string(&baseline.recovery.bits),
        baseline.accuracy * 100.0,
        baseline.decoded_windows,
        baseline.total_windows,
    );

    let defended = run_rsa_attack(timecache_mode(), &key);
    println!(
        "timecache recovery   : {} ({:.1}% correct, {}/{} windows decoded)",
        bits_to_string(&defended.recovery.bits),
        defended.accuracy * 100.0,
        defended.decoded_windows,
        defended.total_windows,
    );

    println!();
    if baseline.accuracy > 0.9 && defended.decoded_windows == 0 {
        println!("verdict: attack succeeds on the baseline and is blind under TimeCache,");
        println!("matching Section VI-A.2 of the paper.");
    } else {
        println!("verdict: UNEXPECTED — see the numbers above.");
    }
}
