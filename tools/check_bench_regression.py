#!/usr/bin/env python3
"""Gate on BENCH_sweep.json per-access regressions.

Compares the `per_access_ns` section of a freshly measured BENCH_sweep.json
against the checked-in baseline and fails (exit 1) if any metric present in
both files got slower by more than the allowed factor (default 1.30, i.e. a
30% regression budget to absorb shared-runner noise). Metrics only present
on one side are reported but never fail the check, so adding a new
microbenchmark doesn't break CI on the transition commit.

Usage:
    tools/check_bench_regression.py BASELINE.json MEASURED.json [--max-ratio 1.30]
"""

import argparse
import json
import sys


def per_access(path):
    with open(path) as f:
        doc = json.load(f)
    section = doc.get("per_access_ns")
    if not isinstance(section, dict) or not section:
        sys.exit(f"{path}: no per_access_ns section")
    return {k: float(v) for k, v in section.items()}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in BENCH_sweep.json")
    ap.add_argument("measured", help="freshly produced BENCH_sweep.json")
    ap.add_argument(
        "--max-ratio",
        type=float,
        default=1.30,
        help="fail if measured/baseline exceeds this (default 1.30)",
    )
    args = ap.parse_args()

    base = per_access(args.baseline)
    new = per_access(args.measured)

    failed = []
    for key in sorted(base.keys() | new.keys()):
        if key not in base:
            print(f"  {key:<32} (new metric)       measured {new[key]:8.2f} ns")
            continue
        if key not in new:
            print(f"  {key:<32} (dropped metric)   baseline {base[key]:8.2f} ns")
            continue
        ratio = new[key] / base[key] if base[key] > 0 else float("inf")
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSED"
        print(
            f"  {key:<32} baseline {base[key]:8.2f} ns   "
            f"measured {new[key]:8.2f} ns   ratio {ratio:5.2f}x   {verdict}"
        )
        if ratio > args.max_ratio:
            failed.append((key, ratio))

    if failed:
        names = ", ".join(f"{k} ({r:.2f}x)" for k, r in failed)
        sys.exit(f"per_access_ns regression beyond {args.max_ratio:.2f}x: {names}")
    print(f"all shared per_access_ns metrics within {args.max_ratio:.2f}x of baseline")


if __name__ == "__main__":
    main()
